(* Tests for QF_BV terms, bit-blasting and the solver facade.

   The backbone is a differential property: for random concrete inputs x, y
   the constraint [op(vx, vy) = result /\ vx = x /\ vy = y] must be
   satisfiable, and the model's [result] must equal the Bv-level
   computation.  This exercises every circuit in the blaster against the
   independently implemented bitvector library. *)

module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term
module Solver = Sqed_smt.Solver
module Smtlib = Sqed_smt.Smtlib

let result_t =
  Alcotest.testable
    (Fmt.of_to_string (function
      | Solver.Sat -> "SAT"
      | Solver.Unsat -> "UNSAT"
      | Solver.Unknown -> "UNKNOWN"))
    ( = )

let fresh_name =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d" prefix !n

(* ---------------------------------------------------------------- *)
(* Term construction and folding                                     *)
(* ---------------------------------------------------------------- *)

let test_hashcons () =
  let x = Term.var (fresh_name "hc") 8 in
  let a = Term.add x (Term.of_int ~width:8 1) in
  let b = Term.add x (Term.of_int ~width:8 1) in
  Alcotest.(check bool) "physically equal" true (Term.equal a b)

let test_folding () =
  let c1 = Term.of_int ~width:8 3 and c2 = Term.of_int ~width:8 4 in
  (match Term.is_const (Term.add c1 c2) with
  | Some v -> Alcotest.(check int) "3+4" 7 (Bv.to_int v)
  | None -> Alcotest.fail "constant not folded");
  let x = Term.var (fresh_name "fold") 8 in
  Alcotest.(check bool) "x+0 = x" true
    (Term.equal x (Term.add x (Term.of_int ~width:8 0)));
  Alcotest.(check bool) "x&x = x" true (Term.equal x (Term.and_ x x));
  Alcotest.(check bool) "x^x = 0" true
    (Term.equal (Term.of_int ~width:8 0) (Term.xor x x));
  Alcotest.(check bool) "not not x = x" true
    (Term.equal x (Term.not_ (Term.not_ x)));
  Alcotest.(check bool) "eq x x = tt" true (Term.equal Term.tt (Term.eq x x));
  Alcotest.(check bool) "ite c a a = a" true
    (Term.equal x (Term.ite (Term.var (fresh_name "c") 1) x x))

let test_width_errors () =
  let x = Term.var (fresh_name "we") 8 and y = Term.var (fresh_name "we") 4 in
  Alcotest.(check bool) "width mismatch raises" true
    (try
       ignore (Term.add x y);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "same name, different width = distinct vars" true
    (let n = fresh_name "clash" in
     let a = Term.var n 8 and b = Term.var n 4 in
     (not (Term.equal a b)) && Term.width a = 8 && Term.width b = 4)

let test_eval () =
  let x = Term.var (fresh_name "ev") 8 in
  let t = Term.mul (Term.add x (Term.of_int ~width:8 1)) x in
  let v = Term.eval (fun _ -> Bv.of_int ~width:8 5) t in
  Alcotest.(check int) "(5+1)*5" 30 (Bv.to_int v)

let test_vars_and_size () =
  let x = Term.var (fresh_name "vs") 8 and y = Term.var (fresh_name "vs") 8 in
  let t = Term.add (Term.mul x y) x in
  Alcotest.(check int) "two vars" 2 (List.length (Term.vars t));
  Alcotest.(check bool) "dag size" true (Term.size t >= 4)

(* ---------------------------------------------------------------- *)
(* Solver end-to-end                                                  *)
(* ---------------------------------------------------------------- *)

let test_simple_sat () =
  let s = Solver.create () in
  let x = Term.var (fresh_name "s") 8 in
  Solver.assert_ s (Term.eq (Term.add x x) (Term.of_int ~width:8 10));
  Alcotest.check result_t "x+x=10 sat" Solver.Sat (Solver.check s);
  let v = Solver.model_var s x in
  Alcotest.(check int) "model sums" 10
    (Bv.to_int (Bv.add v v))

let test_simple_unsat () =
  let s = Solver.create () in
  let x = Term.var (fresh_name "u") 8 in
  Solver.assert_ s (Term.eq x (Term.of_int ~width:8 1));
  Solver.assert_ s (Term.eq x (Term.of_int ~width:8 2));
  Alcotest.check result_t "x=1 and x=2" Solver.Unsat (Solver.check s)

let test_no_odd_square_is_even () =
  (* x odd => x*x odd: the negation must be unsat. *)
  let s = Solver.create () in
  let x = Term.var (fresh_name "odd") 8 in
  let lsb t = Term.bit t 0 in
  Solver.assert_ s (lsb x);
  Solver.assert_ s (Term.not_ (lsb (Term.mul x x)));
  Alcotest.check result_t "odd square even" Solver.Unsat (Solver.check s)

let test_commutativity_valid () =
  let x = Term.var (fresh_name "cm") 8 and y = Term.var (fresh_name "cm") 8 in
  let r, _ = Solver.check_valid (Term.eq (Term.add x y) (Term.add y x)) in
  Alcotest.check result_t "add commutative" Solver.Unsat r

let test_sub_not_commutative () =
  let x = Term.var (fresh_name "nc") 8 and y = Term.var (fresh_name "nc") 8 in
  let r, model = Solver.check_valid (Term.eq (Term.sub x y) (Term.sub y x)) in
  Alcotest.check result_t "sub not commutative" Solver.Sat r;
  Alcotest.(check bool) "countermodel nonempty" true (model <> [])

let test_assumptions () =
  let s = Solver.create () in
  let x = Term.var (fresh_name "as") 4 in
  Solver.assert_ s (Term.ult x (Term.of_int ~width:4 8));
  let is3 = Term.eq x (Term.of_int ~width:4 3) in
  Alcotest.check result_t "assume x=3" Solver.Sat
    (Solver.check ~assumptions:[ is3 ] s);
  Alcotest.(check int) "model 3" 3 (Bv.to_int (Solver.model_var s x));
  let is9 = Term.eq x (Term.of_int ~width:4 9) in
  Alcotest.check result_t "assume x=9 fails" Solver.Unsat
    (Solver.check ~assumptions:[ is9 ] s);
  Alcotest.check result_t "still sat afterwards" Solver.Sat (Solver.check s)

let test_model_value () =
  let s = Solver.create () in
  let x = Term.var (fresh_name "mv") 8 in
  Solver.assert_ s (Term.eq x (Term.of_int ~width:8 7));
  Alcotest.check result_t "sat" Solver.Sat (Solver.check s);
  let v = Solver.model_value s (Term.mul x (Term.of_int ~width:8 3)) in
  Alcotest.(check int) "7*3" 21 (Bv.to_int v)

let test_solver_dimacs_export () =
  let s = Solver.create () in
  let x = Term.var (fresh_name "dim") 4 in
  Solver.assert_ s (Term.eq (Term.add x x) (Term.of_int ~width:4 6));
  let text = Solver.to_dimacs s in
  (* The exported instance must parse and agree on satisfiability. *)
  match Sqed_sat.Dimacs.parse text with
  | Error e -> Alcotest.fail e
  | Ok cnf -> (
      match Sqed_sat.Dimacs.solve cnf with
      | Sqed_sat.Sat.Sat, Some _ -> ()
      | _ -> Alcotest.fail "exported CNF should be SAT")

let test_smtlib_output () =
  let x = Term.var (fresh_name "pr") 8 in
  let t = Term.eq (Term.add x x) (Term.of_int ~width:8 4) in
  let s = Smtlib.script [ t ] in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions check-sat" true (contains s "(check-sat)");
  Alcotest.(check bool) "mentions declare" true
    (contains s "declare-const")

(* ---------------------------------------------------------------- *)
(* Differential properties: blaster vs Bv                            *)
(* ---------------------------------------------------------------- *)

let force s term value = Solver.assert_ s (Term.eq term (Term.const value))

(* Check that [op] blasted symbolically agrees with [bvop] concretely. *)
let differential ?(width = 8) name op bvop =
  let arb =
    QCheck.make
      ~print:(fun (a, b) -> Bv.to_string a ^ ", " ^ Bv.to_string b)
      (QCheck.Gen.map2
         (fun a b -> (Bv.of_int64 ~width a, Bv.of_int64 ~width b))
         QCheck.Gen.int64 QCheck.Gen.int64)
  in
  QCheck.Test.make ~name ~count:60 arb (fun (a, b) ->
      let s = Solver.create () in
      let x = Term.var (fresh_name "dx") width
      and y = Term.var (fresh_name "dy") width in
      force s x a;
      force s y b;
      let r = op x y in
      let rv = Term.var (fresh_name "dr") (Term.width r) in
      Solver.assert_ s (Term.eq rv r);
      match Solver.check s with
      | Solver.Sat -> Bv.equal (Solver.model_var s rv) (bvop a b)
      | _ -> false)

let bool_of b = if b then Bv.one 1 else Bv.zero 1

let differential_props =
  [
    differential "blast add" Term.add Bv.add;
    differential "blast sub" Term.sub Bv.sub;
    differential "blast mul" Term.mul Bv.mul;
    differential "blast and" Term.and_ Bv.logand;
    differential "blast or" Term.or_ Bv.logor;
    differential "blast xor" Term.xor Bv.logxor;
    differential "blast udiv" Term.udiv Bv.udiv;
    differential "blast urem" Term.urem Bv.urem;
    differential "blast shl" Term.shl Bv.shl_bv;
    differential "blast lshr" Term.lshr Bv.lshr_bv;
    differential "blast ashr" Term.ashr Bv.ashr_bv;
    differential "blast eq" Term.eq (fun a b -> bool_of (Bv.equal a b));
    differential "blast ult" Term.ult (fun a b -> bool_of (Bv.ult a b));
    differential "blast slt" Term.slt (fun a b -> bool_of (Bv.slt a b));
    differential "blast ule" Term.ule (fun a b -> bool_of (Bv.ule a b));
    differential ~width:5 "blast add w5" Term.add Bv.add;
    differential ~width:5 "blast shl w5" Term.shl Bv.shl_bv;
    differential ~width:5 "blast ashr w5" Term.ashr Bv.ashr_bv;
    differential ~width:5 "blast mul w5" Term.mul Bv.mul;
    differential ~width:5 "blast udiv w5" Term.udiv Bv.udiv;
    (let neg1 x _ = Term.neg x and bneg a _ = Bv.neg a in
     differential "blast neg" neg1 bneg);
    (let not1 x _ = Term.not_ x and bnot a _ = Bv.lognot a in
     differential "blast not" not1 bnot);
    (let f x y = Term.ite (Term.ult x y) (Term.add x y) (Term.sub x y)
     and g a b = if Bv.ult a b then Bv.add a b else Bv.sub a b in
     differential "blast ite" f g);
    (let f x y = Term.concat (Term.extract ~hi:7 ~lo:4 x) (Term.extract ~hi:3 ~lo:0 y)
     and g a b =
       Bv.concat (Bv.extract ~hi:7 ~lo:4 a) (Bv.extract ~hi:3 ~lo:0 b)
     in
     differential "blast concat/extract" f g);
    (let f x _ = Term.sext (Term.extract ~hi:3 ~lo:0 x) 8
     and g a _ = Bv.sext (Bv.extract ~hi:3 ~lo:0 a) 8 in
     differential "blast sext" f g);
    (let f x _ = Term.zext (Term.extract ~hi:3 ~lo:0 x) 8
     and g a _ = Bv.zext (Bv.extract ~hi:3 ~lo:0 a) 8 in
     differential "blast zext" f g);
  ]

(* Validity checks that known bitvector identities hold symbolically. *)
let identity_props =
  let mk name f =
    QCheck.Test.make ~name ~count:1
      (QCheck.make ~print:(fun () -> "()") (QCheck.Gen.return ()))
      (fun () ->
        let x = Term.var (fresh_name "ix") 8
        and y = Term.var (fresh_name "iy") 8 in
        let r, _ = Solver.check_valid (f x y) in
        r = Solver.Unsat)
  in
  [
    mk "valid: demorgan" (fun x y ->
        Term.eq
          (Term.not_ (Term.and_ x y))
          (Term.or_ (Term.not_ x) (Term.not_ y)));
    mk "valid: sub is add neg" (fun x y ->
        Term.eq (Term.sub x y) (Term.add x (Term.neg y)));
    mk "valid: sub via xori trick (Listing 2)" (fun x y ->
        (* ~(~x + y) = x - y : the paper's SUB equivalent program. *)
        let ones = Term.of_int ~width:8 (-1) in
        Term.eq
          (Term.xor (Term.add (Term.xor x ones) y) ones)
          (Term.sub x y));
    mk "valid: xor via or minus and" (fun x y ->
        Term.eq (Term.xor x y) (Term.sub (Term.or_ x y) (Term.and_ x y)));
    mk "valid: slt via sign flip" (fun x y ->
        let m = Term.of_int ~width:8 0x80 in
        Term.eq (Term.slt x y) (Term.ult (Term.xor x m) (Term.xor y m)));
    mk "valid: shl 1 doubles" (fun x _ ->
        Term.eq (Term.shl x (Term.of_int ~width:8 1)) (Term.add x x));
  ]

(* ---------------------------------------------------------------- *)
(* SMT-LIB parser                                                    *)
(* ---------------------------------------------------------------- *)

module Smtlib_parser = Sqed_smt.Smtlib_parser

let test_parser_basic () =
  let src =
    "(set-logic QF_BV)\n\
     (declare-const a (_ BitVec 8))\n\
     (declare-fun b () (_ BitVec 8))\n\
     ; a comment\n\
     (assert (= (bvadd a b) #x10))\n\
     (assert (bvult a (_ bv7 8)))\n\
     (check-sat)\n"
  in
  match Smtlib_parser.parse src with
  | Error e -> Alcotest.fail e
  | Ok script ->
      Alcotest.(check int) "two declarations" 2
        (List.length script.Smtlib_parser.declarations);
      Alcotest.(check int) "two assertions" 2
        (List.length script.Smtlib_parser.assertions);
      Alcotest.(check bool) "check-sat seen" true script.Smtlib_parser.check_sat

let test_parser_solve () =
  let src =
    "(declare-const a (_ BitVec 8))\n(assert (= (bvmul a #x03) #x0f))\n"
  in
  match Smtlib_parser.solve_script src with
  | Ok (Solver.Sat, [ ("a", v) ]) ->
      Alcotest.(check int) "3a = 15" 15 (Bv.to_int (Bv.mul v (Bv.of_int ~width:8 3)))
  | Ok _ -> Alcotest.fail "expected sat with one constant"
  | Error e -> Alcotest.fail e

let test_parser_let_and_ops () =
  let src =
    "(declare-const a (_ BitVec 4))\n\
     (assert (let ((t (bvnot a))) (= (bvand t a) #b0000)))\n\
     (assert (=> (bvuge a #b0100) (bvule a #b1100)))\n"
  in
  match Smtlib_parser.parse src with
  | Ok s -> Alcotest.(check int) "parsed" 2 (List.length s.Smtlib_parser.assertions)
  | Error e -> Alcotest.fail e

let test_parser_errors () =
  List.iter
    (fun src ->
      match Smtlib_parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ src))
    [
      "(declare-const a (_ BitVec 8)";
      "(assert (frobnicate x))";
      "(declare-const a (Array I E))";
      "(assert unknown_symbol)";
    ]

let test_parser_roundtrip_with_emitter () =
  (* Our own emitter's output must parse back and stay equisatisfiable. *)
  let x = Term.var (fresh_name "rt") 8 and y = Term.var (fresh_name "rt") 8 in
  let t = Term.and_ (Term.eq (Term.sub x y) (Term.of_int ~width:8 3))
      (Term.ult y (Term.of_int ~width:8 10)) in
  let src = Smtlib.script [ t ] in
  match Smtlib_parser.solve_script src with
  | Ok (Solver.Sat, model) ->
      let get n = List.assoc n model in
      let vx = get (List.nth (List.map fst model) 0) in
      ignore vx;
      (* check both constraints on the parsed-and-solved model *)
      let vx = get (Term.to_string x) and vy = get (Term.to_string y) in
      Alcotest.(check int) "x - y = 3" 3 (Bv.to_int (Bv.sub vx vy));
      Alcotest.(check bool) "y < 10" true (Bv.ult vy (Bv.of_int ~width:8 10))
  | Ok _ -> Alcotest.fail "expected sat"
  | Error e -> Alcotest.fail e

(* ---------------------------------------------------------------- *)
(* Rewrite pass                                                      *)
(* ---------------------------------------------------------------- *)

module Rewrite = Sqed_smt.Rewrite

let test_rewrite_rules () =
  let x = Term.var (fresh_name "rw") 8 and y = Term.var (fresh_name "rw") 8 in
  let c k = Term.of_int ~width:8 k in
  (* constant re-association *)
  Alcotest.(check bool) "(x+1)+2 = x+3" true
    (Term.equal (Rewrite.simplify (Term.add (Term.add x (c 1)) (c 2)))
       (Term.add x (c 3)));
  (* eq-of-xor *)
  Alcotest.(check bool) "eq(x^y,0) = eq(x,y)" true
    (Term.equal (Rewrite.simplify (Term.eq (Term.xor x y) (c 0))) (Term.eq x y));
  Alcotest.(check bool) "eq(x-y,0) = eq(x,y)" true
    (Term.equal (Rewrite.simplify (Term.eq (Term.sub x y) (c 0))) (Term.eq x y));
  (* boolean ite collapse *)
  let cnd = Term.var (fresh_name "rwc") 1 in
  Alcotest.(check bool) "ite c 1 0 = c" true
    (Term.equal
       (Rewrite.simplify (Term.ite cnd (Term.of_int ~width:1 1) (Term.of_int ~width:1 0)))
       cnd);
  Alcotest.(check bool) "ite c 0 1 = not c" true
    (Term.equal
       (Rewrite.simplify (Term.ite cnd (Term.of_int ~width:1 0) (Term.of_int ~width:1 1)))
       (Term.not_ cnd));
  (* extract through concat *)
  Alcotest.(check bool) "extract of concat hits the right half" true
    (Term.equal
       (Rewrite.simplify (Term.extract ~hi:3 ~lo:0 (Term.concat x y)))
       (Term.extract ~hi:3 ~lo:0 y));
  (* eq of ite-of-constants *)
  Alcotest.(check bool) "eq(ite c 3 5, 3) = c" true
    (Term.equal (Rewrite.simplify (Term.eq (Term.ite cnd (c 3) (c 5)) (c 3))) cnd)

(* Random term generator for the soundness property. *)
let rec random_term rng vars depth width =
  if depth = 0 then
    if Random.State.bool rng then List.nth vars (Random.State.int rng (List.length vars))
    else Term.of_int ~width (Random.State.int rng 256)
  else
    let sub () = random_term rng vars (depth - 1) width in
    match Random.State.int rng 12 with
    | 0 -> Term.add (sub ()) (sub ())
    | 1 -> Term.sub (sub ()) (sub ())
    | 2 -> Term.and_ (sub ()) (sub ())
    | 3 -> Term.or_ (sub ()) (sub ())
    | 4 -> Term.xor (sub ()) (sub ())
    | 5 -> Term.not_ (sub ())
    | 6 -> Term.mul (sub ()) (sub ())
    | 7 -> Term.ite (Term.eq (sub ()) (sub ())) (sub ()) (sub ())
    | 8 -> Term.shl (sub ()) (sub ())
    | 9 ->
        Term.zext (Term.extract ~hi:(width - 2) ~lo:0 (sub ())) width
    | 10 -> Term.concat (Term.extract ~hi:3 ~lo:0 (sub ())) (Term.extract ~hi:(width - 5) ~lo:0 (sub ()))
    | _ -> Term.lshr (sub ()) (sub ())

let rewrite_sound =
  QCheck.Test.make ~name:"rewrite preserves evaluation" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let width = 8 in
      let names = [ fresh_name "rs"; fresh_name "rs"; fresh_name "rs" ] in
      let vars = List.map (fun n -> Term.var n width) names in
      let t = random_term rng vars 4 width in
      let t' = Rewrite.simplify t in
      let env = List.map (fun n -> (n, Bv.random rng width)) names in
      let lookup n = List.assoc n env in
      Bv.equal (Term.eval lookup t) (Term.eval lookup t'))

let rewrite_not_costlier =
  QCheck.Test.make ~name:"rewrite never raises the gate estimate" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let names = [ fresh_name "rg"; fresh_name "rg" ] in
      let vars = List.map (fun n -> Term.var n 8) names in
      let t = random_term rng vars 4 8 in
      Rewrite.gate_estimate (Rewrite.simplify t) <= Rewrite.gate_estimate t)

let suite =
  [
    Alcotest.test_case "smtlib parser basic" `Quick test_parser_basic;
    Alcotest.test_case "smtlib parser solve" `Quick test_parser_solve;
    Alcotest.test_case "smtlib parser let/ops" `Quick test_parser_let_and_ops;
    Alcotest.test_case "smtlib parser errors" `Quick test_parser_errors;
    Alcotest.test_case "smtlib emit/parse roundtrip" `Quick
      test_parser_roundtrip_with_emitter;
    Alcotest.test_case "rewrite rules" `Quick test_rewrite_rules;
    Alcotest.test_case "hashcons" `Quick test_hashcons;
    Alcotest.test_case "folding" `Quick test_folding;
    Alcotest.test_case "width errors" `Quick test_width_errors;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "vars and size" `Quick test_vars_and_size;
    Alcotest.test_case "simple sat" `Quick test_simple_sat;
    Alcotest.test_case "simple unsat" `Quick test_simple_unsat;
    Alcotest.test_case "odd square odd" `Quick test_no_odd_square_is_even;
    Alcotest.test_case "commutativity valid" `Quick test_commutativity_valid;
    Alcotest.test_case "sub not commutative" `Quick test_sub_not_commutative;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "model value" `Quick test_model_value;
    Alcotest.test_case "smtlib output" `Quick test_smtlib_output;
    Alcotest.test_case "solver dimacs export" `Quick test_solver_dimacs_export;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      (differential_props @ identity_props
      @ [ rewrite_sound; rewrite_not_costlier ])
