(* Synthesis layer tests: component semantics vs their instruction
   expansions, multiset combinatorics, topology well-formedness, CEGIS on
   known equivalences, agreement between the enumerated and the
   symbolic-location engines, and the HPF priority computation. *)

module Bv = Sqed_bv.Bv
module Term = Sqed_smt.Term
module Insn = Sqed_isa.Insn
module Exec = Sqed_isa.Exec
module Synth = Sqed_synth
module C = Synth.Component

let xlen = 8
let cfg = { Synth.Cegis.default_config with Synth.Cegis.xlen }

(* ---------------------------------------------------------------- *)
(* Components                                                        *)
(* ---------------------------------------------------------------- *)

let test_library_composition () =
  Alcotest.(check int) "10 NICs" 10 (List.length Synth.Library_.nics);
  Alcotest.(check int) "10 DICs" 10 (List.length Synth.Library_.dics);
  Alcotest.(check int) "9 CICs" 9 (List.length Synth.Library_.cics);
  Alcotest.(check int) "30 total" 30 (List.length Synth.Library_.default);
  let labels = List.map (fun c -> c.C.label) Synth.Library_.default in
  Alcotest.(check int) "labels unique" 30
    (List.length (List.sort_uniq compare labels));
  Alcotest.(check int) "12 synthesis cases" 12 (List.length Synth.Library_.specs)

(* Execute a component's instruction expansion on the interpreter and
   compare with its symbolic semantics. *)
let component_agrees comp seed =
  let rng = Random.State.make [| seed |] in
  let reg_inputs = C.arity comp in
  let imm_inputs = C.imm_arity comp in
  let input_regs = List.init reg_inputs (fun i -> i + 1) in
  let input_values = List.map (fun _ -> Bv.random rng xlen) input_regs in
  let imm_values = List.init imm_inputs (fun _ -> Random.State.int rng 4096 - 2048) in
  let attrs =
    List.map
      (fun w ->
        (* Shift-amount attributes stay in range by construction (width 5). *)
        Bv.random rng w)
      comp.C.attrs
  in
  (* Symbolic evaluation. *)
  let rec weave kinds regs imms =
    match (kinds, regs, imms) with
    | [], [], [] -> []
    | C.Reg :: ks, v :: rs, is -> Term.const v :: weave ks rs is
    | C.Imm12 :: ks, rs, i :: is ->
        Term.const (Bv.of_int ~width:12 i) :: weave ks rs is
    | _ -> assert false
  in
  let sem_inputs = weave comp.C.inputs input_values imm_values in
  let expected =
    Term.eval
      (fun _ -> assert false)
      (comp.C.sem ~xlen sem_inputs (List.map Term.const attrs))
  in
  (* Concrete execution of the expansion. *)
  let dst = 10 in
  let temps = List.init comp.C.n_temps (fun i -> 20 + i) in
  let rec srcs kinds regs imms =
    match (kinds, regs, imms) with
    | [], [], [] -> []
    | C.Reg :: ks, r :: rs, is -> `Reg r :: srcs ks rs is
    | C.Imm12 :: ks, rs, i :: is -> `Imm i :: srcs ks rs is
    | _ -> assert false
  in
  let insns =
    comp.C.instantiate ~xlen ~dst
      ~srcs:(srcs comp.C.inputs input_regs imm_values)
      ~attrs ~temps
  in
  let st = Exec.create ~xlen ~mem_words:2 in
  List.iteri (fun i v -> Exec.set_reg st (i + 1) v) input_values;
  List.iter (Exec.exec st) insns;
  Bv.equal (Exec.reg st dst) expected

let component_props =
  List.map
    (fun comp ->
      QCheck.Test.make
        ~name:(Printf.sprintf "component %s: sem = expansion" comp.C.label)
        ~count:100
        (QCheck.make ~print:string_of_int QCheck.Gen.nat)
        (component_agrees comp))
    Synth.Library_.default

(* ---------------------------------------------------------------- *)
(* Multisets                                                         *)
(* ---------------------------------------------------------------- *)

let test_multiset_counts () =
  Alcotest.(check int) "((3 over 2))" 6
    (List.length (Synth.Multiset.combinations_with_replacement [ 1; 2; 3 ] 2));
  Alcotest.(check int) "count formula" 6 (Synth.Multiset.count 3 2);
  Alcotest.(check int) "paper: ((29 over 6))" 1344904
    (Synth.Multiset.count 29 6);
  Alcotest.(check int) "((30 over 3))" 4960 (Synth.Multiset.count 30 3);
  Alcotest.(check int) "up_to sizes" (3 + 6 + 10)
    (List.length (Synth.Multiset.up_to [ 1; 2; 3 ] 3))

let test_multiset_shuffle_deterministic () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check bool) "same seed same order" true
    (Synth.Multiset.shuffle ~seed:7 xs = Synth.Multiset.shuffle ~seed:7 xs);
  Alcotest.(check bool) "different seed different order" true
    (Synth.Multiset.shuffle ~seed:7 xs <> Synth.Multiset.shuffle ~seed:8 xs);
  Alcotest.(check int) "permutation" 100
    (List.length (List.sort_uniq compare (Synth.Multiset.shuffle ~seed:7 xs)))

(* ---------------------------------------------------------------- *)
(* Topologies                                                        *)
(* ---------------------------------------------------------------- *)

let test_topology_forbids_identity () =
  (* For spec ADD, the single-component multiset [ADD] must yield no
     skeleton (the paper's input constraint). *)
  let spec = Synth.Library_.spec "ADD" in
  let add = Synth.Library_.find "ADD" in
  Alcotest.(check int) "no self skeleton" 0
    (List.length (Synth.Topology.enumerate ~spec [ add ]));
  (* [SUB] for ADD is fine. *)
  let sub = Synth.Library_.find "SUB" in
  Alcotest.(check bool) "sub skeletons exist" true
    (Synth.Topology.enumerate ~spec [ sub ] <> [])

let test_topology_no_dead_lines () =
  let spec = Synth.Library_.spec "ADD" in
  let neg = Synth.Library_.find "NEG" and sub = Synth.Library_.find "SUB" in
  let sks = Synth.Topology.enumerate ~spec [ neg; sub ] in
  Alcotest.(check bool) "skeletons exist" true (sks <> []);
  List.iter
    (fun sk ->
      (* Every line except the last must feed a later line. *)
      let n = List.length sk.Synth.Topology.sk_lines in
      let used = Array.make n false in
      used.(n - 1) <- true;
      List.iter
        (fun (_, args) ->
          List.iter
            (function Synth.Program.Line j -> used.(j) <- true | _ -> ())
            args)
        sk.Synth.Topology.sk_lines;
      Alcotest.(check bool) "no dead line" true (Array.for_all Fun.id used))
    sks

(* ---------------------------------------------------------------- *)
(* CEGIS on known equivalences                                       *)
(* ---------------------------------------------------------------- *)

let stats = Synth.Cegis.mk_stats ()

let test_cegis_add_via_neg_sub () =
  let spec = Synth.Library_.spec "ADD" in
  let ms = [ Synth.Library_.find "NEG"; Synth.Library_.find "SUB" ] in
  let programs = Synth.Cegis.synthesize_multiset cfg ~spec ~multiset:ms stats in
  Alcotest.(check bool) "found a + b = a - (-b)" true (programs <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "verifies" true
        (Synth.Cegis.verify_equivalence cfg ~spec p stats))
    programs

let test_cegis_sub_listing2 () =
  (* SUB = NOT(NOT a + b): needs the attribute-free NOT twice plus ADD. *)
  let spec = Synth.Library_.spec "SUB" in
  let not_ = Synth.Library_.find "NOT" in
  let ms = [ not_; Synth.Library_.find "ADD"; not_ ] in
  let programs = Synth.Cegis.synthesize_multiset cfg ~spec ~multiset:ms stats in
  Alcotest.(check bool) "listing-2 shape found" true (programs <> [])

let test_cegis_xori_with_attr () =
  (* XOR a 0xFF via the DIC XORI with a solved attribute. *)
  let spec = Synth.Library_.spec "SUB" in
  let ms =
    [ Synth.Library_.find "XORI#"; Synth.Library_.find "ADD";
      Synth.Library_.find "XORI#" ]
  in
  let programs = Synth.Cegis.synthesize_multiset cfg ~spec ~multiset:ms stats in
  (* Only the low XLEN bits of the 12-bit immediate attribute matter at
     this width, and the ~x trick has exactly two realizations: all-ones
     (x ⊕ ones = ~x) and ones-below-the-sign-bit (x ⊕ 0x7f.. = ~x + msb,
     where the two msb offsets cancel through the ADD).  The engine
     verifies whichever the SAT model picks; accept both. *)
  let low_ones v =
    Bv.equal (Bv.extract ~hi:(xlen - 2) ~lo:0 v) (Bv.ones (xlen - 1))
  in
  Alcotest.(check bool) "programs found" true (programs <> []);
  Alcotest.(check bool) "attribute -1 solved" true
    (List.exists
       (fun p ->
         List.for_all
           (fun line ->
             match line.Synth.Program.attr_values with
             | [ v ] -> low_ones v
             | _ -> true)
           p.Synth.Program.lines)
       programs)

let test_cegis_rejects_wrong () =
  let spec = Synth.Library_.spec "ADD" in
  let ms = [ Synth.Library_.find "AND"; Synth.Library_.find "OR" ] in
  let programs = Synth.Cegis.synthesize_multiset cfg ~spec ~multiset:ms stats in
  Alcotest.(check (list string)) "and/or cannot make add" []
    (List.map Synth.Program.to_string programs)

(* The symbolic-location engine agrees with exhaustive enumeration on
   which multisets are productive. *)
let locsynth_agrees_with_enumeration =
  QCheck.Test.make ~name:"locsynth = enumeration (productivity)" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let lib = Array.of_list Synth.Library_.default in
      let pick () = lib.(Random.State.int rng (Array.length lib)) in
      let ms = [ pick (); pick () ] in
      let case = List.nth [ "ADD"; "SUB"; "XOR"; "OR"; "AND" ] (seed mod 5) in
      let spec = Synth.Library_.spec case in
      let enumerated =
        Synth.Cegis.synthesize_multiset cfg ~spec ~multiset:ms stats <> []
      in
      let symbolic =
        let found, _ =
          Synth.Locsynth.synthesize ~config:cfg ~spec ~components:ms
            ~require_all_used:true ~max_programs:1 ~stats ()
        in
        found <> []
      in
      enumerated = symbolic)

(* Any program returned by the engines verifies against its spec. *)
let engines_sound =
  QCheck.Test.make ~name:"engine programs verify" ~count:4
    (QCheck.make ~print:Fun.id
       (QCheck.Gen.oneofl [ "ADD"; "SUB"; "XOR"; "AND" ]))
    (fun case ->
      let spec = Synth.Library_.spec case in
      let options =
        {
          Synth.Engine.default_options with
          Synth.Engine.k = 1;
          n_max = 2;
          min_components = 2;
          time_budget = Some 30.0;
          config = cfg;
        }
      in
      let r =
        Synth.Hpf.synthesize ~options ~spec ~library:Synth.Library_.default ()
      in
      List.for_all
        (fun p -> Synth.Cegis.verify_equivalence cfg ~spec p stats)
        r.Synth.Engine.programs)

(* ---------------------------------------------------------------- *)
(* HPF machinery                                                     *)
(* ---------------------------------------------------------------- *)

let test_priority_formula () =
  let weights = Hashtbl.create 8 in
  Hashtbl.replace weights "A" (3, 1);
  Hashtbl.replace weights "B" (1, 2);
  let mk label name =
    {
      C.label;
      name;
      cls = C.NIC;
      inputs = [];
      attrs = [];
      sem = (fun ~xlen:_ _ _ -> Term.tt);
      n_temps = 0;
      instantiate = (fun ~xlen:_ ~dst:_ ~srcs:_ ~attrs:_ ~temps:_ -> []);
    }
  in
  let a = mk "A" "ADD" and b = mk "B" "SUB" in
  (* priority = (c_A + c_B - alpha*chi) / (e_A + e_B); chi counts A (name
     ADD) against spec ADD. *)
  Alcotest.(check (float 1e-9)) "priority"
    ((3.0 +. 1.0 -. 1.0) /. 3.0)
    (Synth.Hpf.priority ~alpha:1 ~weights ~g_name:"ADD" [ a; b ]);
  Alcotest.(check (float 1e-9)) "priority no chi"
    (4.0 /. 3.0)
    (Synth.Hpf.priority ~alpha:1 ~weights ~g_name:"XOR" [ a; b ])

let test_brahma_small_library () =
  (* With a tiny library the classical encoding does synthesize. *)
  let spec = Synth.Library_.spec "ADD" in
  let library =
    [ Synth.Library_.find "NEG"; Synth.Library_.find "SUB" ]
  in
  let options =
    {
      Synth.Engine.default_options with
      Synth.Engine.time_budget = Some 60.0;
      config = cfg;
    }
  in
  let outcome, _, _ = Synth.Brahma.synthesize ~options ~spec ~library in
  match outcome with
  | Synth.Brahma.Synthesized p ->
      Alcotest.(check bool) "verifies" true
        (Synth.Cegis.verify_equivalence cfg ~spec p stats)
  | Synth.Brahma.Budget_exhausted -> Alcotest.fail "budget exhausted"
  | Synth.Brahma.No_program -> Alcotest.fail "no program"

(* to_insns round trip: compile a synthesized program and execute it. *)
let program_to_insns_roundtrip =
  QCheck.Test.make ~name:"program to_insns executes correctly" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.nat)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let spec = Synth.Library_.spec "ADD" in
      let ms = [ Synth.Library_.find "NEG"; Synth.Library_.find "SUB" ] in
      match Synth.Cegis.synthesize_multiset cfg ~spec ~multiset:ms stats with
      | [] -> false
      | p :: _ ->
          let a = Bv.random rng xlen and b = Bv.random rng xlen in
          let insns =
            Synth.Program.to_insns ~xlen p ~dst:10
              ~inputs:[ `Reg 1; `Reg 2 ]
              ~temps:[ 20; 21; 22; 23 ]
          in
          let st = Exec.create ~xlen ~mem_words:2 in
          Exec.set_reg st 1 a;
          Exec.set_reg st 2 b;
          List.iter (Exec.exec st) insns;
          Bv.equal (Exec.reg st 10) (Bv.add a b))

let suite =
  [
    Alcotest.test_case "library composition" `Quick test_library_composition;
    Alcotest.test_case "multiset counts" `Quick test_multiset_counts;
    Alcotest.test_case "shuffle deterministic" `Quick
      test_multiset_shuffle_deterministic;
    Alcotest.test_case "topology forbids identity" `Quick
      test_topology_forbids_identity;
    Alcotest.test_case "topology no dead lines" `Quick
      test_topology_no_dead_lines;
    Alcotest.test_case "cegis add via neg/sub" `Quick test_cegis_add_via_neg_sub;
    Alcotest.test_case "cegis listing 2" `Quick test_cegis_sub_listing2;
    Alcotest.test_case "cegis solves attributes" `Quick test_cegis_xori_with_attr;
    Alcotest.test_case "cegis rejects wrong" `Quick test_cegis_rejects_wrong;
    Alcotest.test_case "priority formula" `Quick test_priority_formula;
    Alcotest.test_case "brahma small library" `Quick test_brahma_small_library;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      (component_props
      @ [
          locsynth_agrees_with_enumeration;
          engines_sound;
          program_to_insns_roundtrip;
        ])
